open Camelot_sim

type lsn = int

(* Logger-daemon configuration: forces park on an LSN-ordered waiter
   heap; a daemon fiber drains all pending targets into one platter
   write and lets the next batch spool while that write's I/O is in
   flight (double-buffered pipelining). *)
type daemon_config = {
  adaptive : bool;
      (* size the collect window from the observed force arrival rate
         instead of a fixed sleep *)
  max_window_ms : float;  (* upper bound on the window; <= 0 = force_ms/4 *)
  batch_spool : bool;
      (* defer per-record spool CPU from the foreground appender to the
         daemon's batched serialization pass *)
}

let daemon_defaults = { adaptive = true; max_window_ms = 0.0; batch_spool = true }

type batch_stats = {
  bs_writes : int;  (* physical writes that carried >= 1 record *)
  bs_records : int;  (* records covered by those writes *)
  bs_hist : (int * int) list;  (* (bucket upper bound, writes) *)
  bs_force_lat_n : int;
  bs_force_lat_mean_ms : float;
  bs_force_lat_max_ms : float;
  bs_lag_mean : float;  (* records still volatile when a write lands *)
  bs_lag_max : int;
}

type 'a t = {
  site : Camelot_mach.Site.t;
  disk : Sync.Resource.t;
  cond : Sync.Condition.t;
  cond_mutex : Sync.Mutex.t;
  mutable records : 'a array;
  mutable base : lsn;  (* LSN of records.(0); advanced by [truncate] *)
  mutable size : int;  (* live slots: records.(0 .. size-1) *)
  mutable durable : lsn;
  mutable writing : bool;
  mutable group_commit : bool;
  batch_window_ms : float;
  daemon : daemon_config option;
  (* dependency-log mode: per-site last-writer table mapping a
     caller-chosen chain key (e.g. "server/key") to the LSN of the
     newest record appended under it. [None] = default mode, zero cost
     on the append path. *)
  dep_last : (string, lsn) Hashtbl.t option;
  (* daemon state *)
  waiters : unit Fiber.resumer Heap.t;  (* min-heap keyed by target LSN *)
  mutable waiter_seq : int;
  kick : unit Mailbox.t;  (* foreground -> controller *)
  wkick : unit Mailbox.t;  (* controller -> writer *)
  mutable serialized : lsn;  (* highest LSN whose batch CPU was charged *)
  mutable write_hi : lsn;  (* highest target handed to the writer *)
  mutable force_hi : lsn;  (* highest LSN any waiter asked to be durable *)
  mutable last_force_at : float;
  mutable ewma_gap_ms : float;  (* EWMA of force inter-arrival, <0 = unknown *)
  (* counters *)
  mutable forces : int;
  mutable disk_writes : int;
  mutable truncations : int;
  batch_hist : int array;  (* log2 buckets: 1, 2, 4, ... 64, >=128 *)
  mutable batch_writes : int;
  mutable batch_records : int;
  mutable force_lat_sum : float;
  mutable force_lat_max : float;
  mutable force_lat_n : int;
  mutable lag_sum : int;
  mutable lag_max : int;
  mutable lag_n : int;
}

let create ?(group_commit = false) ?(batch_window_ms = 0.0) ?daemon
    ?(dep_logging = false) site =
  let eng = Camelot_mach.Site.engine site in
  {
    site;
    disk =
      Sync.Resource.create eng
        ~name:(Printf.sprintf "site%d.logdisk" (Camelot_mach.Site.id site));
    cond = Sync.Condition.create eng;
    cond_mutex = Sync.Mutex.create ();
    records = [||];
    base = 0;
    size = 0;
    durable = -1;
    writing = false;
    group_commit;
    batch_window_ms;
    daemon;
    dep_last = (if dep_logging then Some (Hashtbl.create 256) else None);
    waiters = Heap.create ();
    waiter_seq = 0;
    kick = Mailbox.create eng;
    wkick = Mailbox.create eng;
    serialized = -1;
    write_hi = -1;
    force_hi = -1;
    last_force_at = -1.0;
    ewma_gap_ms = -1.0;
    forces = 0;
    disk_writes = 0;
    truncations = 0;
    batch_hist = Array.make 8 0;
    batch_writes = 0;
    batch_records = 0;
    force_lat_sum = 0.0;
    force_lat_max = 0.0;
    force_lat_n = 0;
    lag_sum = 0;
    lag_max = 0;
    lag_n = 0;
  }

let daemon_mode t = t.daemon <> None

let defers_spool_cpu t =
  match t.daemon with Some d -> d.batch_spool | None -> false

(* --- dependency logging ------------------------------------------- *)

let dep_logging t = t.dep_last <> None

(* The hot append path's whole dependency cost: one probe of the
   last-writer table (plus the replace that installs the upcoming
   append's LSN). Must be immediately followed by the append whose
   record carries the returned edge — nothing may append in between
   (callers never suspend there; fibers are cooperative). *)
let dep_next t ~key =
  match t.dep_last with
  | None -> -1
  | Some tbl ->
      let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> -1 in
      Hashtbl.replace tbl key (t.base + t.size);
      prev

(* Recovery-side rebuild: remember [lsn] as [key]'s newest writer if it
   beats what the table already holds (scans replay oldest-first, so a
   plain replace would also do; the max keeps it order-insensitive). *)
let dep_seed t ~key lsn =
  match t.dep_last with
  | None -> ()
  | Some tbl -> (
      match Hashtbl.find_opt tbl key with
      | Some l when l >= lsn -> ()
      | Some _ | None -> Hashtbl.replace tbl key lsn)

(* Snapshot of the last-writer table for checkpoint partition metadata,
   sorted so checkpoint records are deterministic. *)
let dep_chains t =
  match t.dep_last with
  | None -> []
  | Some tbl ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let append t record =
  let capacity = Array.length t.records in
  if t.size = capacity then begin
    let bigger = Array.make (max 64 (2 * capacity)) record in
    Array.blit t.records 0 bigger 0 t.size;
    t.records <- bigger
  end;
  t.records.(t.size) <- record;
  t.size <- t.size + 1;
  t.base + t.size - 1

let tail_lsn t = t.base + t.size - 1

let durable_lsn t = t.durable

let base_lsn t = t.base

let get t lsn =
  if lsn < t.base || lsn > tail_lsn t then invalid_arg "Log.get: bad lsn";
  t.records.(lsn - t.base)

let force_ms t = (Camelot_mach.Site.model t.site).Camelot_mach.Cost_model.log_force_ms

(* Chaos fault points: a torn force — the site dies mid-write, all but
   the last spooled record land, and the force never returns — and the
   daemon's drain-and-serialize pass. *)
let p_torn = Camelot_chaos.register ~kind:Camelot_chaos.Choice "wal.force.torn"
let p_batch = Camelot_chaos.register "wal.daemon.batch"

let note_batch t ~target =
  let n = target - t.durable in
  if n > 0 then begin
    t.batch_writes <- t.batch_writes + 1;
    t.batch_records <- t.batch_records + n;
    let rec bucket i v = if v <= 1 || i >= 7 then i else bucket (i + 1) (v / 2) in
    let b = bucket 0 n in
    t.batch_hist.(b) <- t.batch_hist.(b) + 1
  end

let note_lag t ~target =
  let lag = tail_lsn t - target in
  if lag >= 0 then begin
    t.lag_sum <- t.lag_sum + lag;
    if lag > t.lag_max then t.lag_max <- lag;
    t.lag_n <- t.lag_n + 1
  end

(* Wake exactly the waiters whose target is now durable — never a
   broadcast. Resumers of crashed fibers are fired already; [resume]
   on them is a no-op. *)
let wake_waiters t =
  let rec drain () =
    if (not (Heap.is_empty t.waiters)) && Heap.min_priority t.waiters <= float_of_int t.durable
    then begin
      Fiber.resume (Heap.pop_exn t.waiters) (Ok ());
      drain ()
    end
  in
  drain ()

(* One physical write makes everything spooled at [target] durable. *)
let disk_write_to t ~target =
  ignore (Sync.Resource.use t.disk ~duration:(force_ms t) : float);
  t.disk_writes <- t.disk_writes + 1;
  let site_id = Camelot_mach.Site.id t.site in
  if Camelot_chaos.deny ~site:site_id p_torn then begin
    (* the partial-durability update must precede the crash so
       [crash]'s truncation sees the torn write's true extent *)
    if target - 1 > t.durable then t.durable <- target - 1;
    Camelot_chaos.die ~site:site_id ()
  end;
  note_batch t ~target;
  if target > t.durable then t.durable <- target;
  note_lag t ~target;
  wake_waiters t;
  Sync.Condition.broadcast t.cond

let disk_write t = disk_write_to t ~target:(tail_lsn t)

(* --- legacy leader/follower group commit ------------------------- *)

let rec force_batched t target =
  if target > t.durable then begin
    if t.writing then begin
      (* a leader's write is in flight; wait for it and re-check *)
      Sync.Mutex.lock t.cond_mutex;
      (* re-read [durable] under the mutex before committing to a wait:
         the leader's write may have landed — possibly exactly at
         [target] — while this fiber was acquiring the lock, in which
         case the broadcast it would wait for has already happened *)
      if target > t.durable && t.writing then
        Sync.Condition.wait t.cond t.cond_mutex;
      Sync.Mutex.unlock t.cond_mutex;
      force_batched t target
    end
    else begin
      t.writing <- true;
      (* let forces issued at this same instant spool their records
         into this batch before the I/O is issued *)
      if t.batch_window_ms > 0.0 then Fiber.sleep t.batch_window_ms
      else Fiber.yield ();
      disk_write t;
      t.writing <- false;
      Sync.Condition.broadcast t.cond
    end
  end

(* --- daemon mode: LSN-ordered parking ---------------------------- *)

let park t ~target =
  Fiber.suspend (fun r ->
      let seq = t.waiter_seq in
      t.waiter_seq <- seq + 1;
      Heap.push t.waiters ~priority:(float_of_int target) ~seq r;
      if target > t.force_hi then begin
        t.force_hi <- target;
        Mailbox.send t.kick ()
      end)

let force_daemon t target =
  if target > t.durable then begin
    (* feed the adaptive window: EWMA of force inter-arrival gaps *)
    let now = Fiber.now () in
    if t.last_force_at >= 0.0 then begin
      let gap = now -. t.last_force_at in
      t.ewma_gap_ms <-
        (if t.ewma_gap_ms < 0.0 then gap
         else (0.75 *. t.ewma_gap_ms) +. (0.25 *. gap))
    end;
    t.last_force_at <- now;
    park t ~target;
    let lat = Fiber.now () -. now in
    t.force_lat_sum <- t.force_lat_sum +. lat;
    if lat > t.force_lat_max then t.force_lat_max <- lat;
    t.force_lat_n <- t.force_lat_n + 1
  end

let force t =
  let target = tail_lsn t in
  t.forces <- t.forces + 1;
  if target > t.durable then
    if daemon_mode t then force_daemon t target
    else if t.group_commit then force_batched t target
    else disk_write t

let append_force t record =
  let lsn = append t record in
  force t;
  lsn

(* --- reading ------------------------------------------------------ *)

(* Build the list back-to-front in one pass: no [List.init] closure and
   no intermediate list, half the allocation for long logs. *)
let records_from_upto t lo hi =
  let rec build lsn acc =
    if lsn < lo then acc
    else build (lsn - 1) ((lsn, Array.unsafe_get t.records (lsn - t.base)) :: acc)
  in
  build hi []

let durable_records t = records_from_upto t t.base t.durable

let all_records t = records_from_upto t t.base (tail_lsn t)

let iter_durable t f =
  for lsn = t.base to t.durable do
    f lsn (Array.unsafe_get t.records (lsn - t.base))
  done

let iter_durable_from t ~from f =
  for lsn = max from t.base to t.durable do
    f lsn (Array.unsafe_get t.records (lsn - t.base))
  done

let fold_durable t ~init ~f =
  let acc = ref init in
  for lsn = t.base to t.durable do
    acc := f !acc lsn (Array.unsafe_get t.records (lsn - t.base))
  done;
  !acc

let records_spooled t = t.size

(* --- truncation --------------------------------------------------- *)

let truncate t ~keep_from =
  if keep_from > t.durable + 1 then
    invalid_arg "Log.truncate: cannot truncate past the durable prefix";
  if keep_from > t.base then begin
    let drop = keep_from - t.base in
    let live = t.size - drop in
    (* compact into a fresh array so the dropped records (and whatever
       they reference) stop being pinned by the backing store *)
    let fresh =
      if live <= 0 then [||]
      else begin
        let a = Array.make (max 64 live) t.records.(drop) in
        Array.blit t.records drop a 0 live;
        a
      end
    in
    t.records <- fresh;
    t.size <- max live 0;
    t.base <- keep_from;
    t.truncations <- t.truncations + 1
  end

(* --- crash -------------------------------------------------------- *)

let crash t =
  (* The volatile tail is lost with the site's memory. Clearing the
     dead slots matters: truncating [size] alone would leave the array
     pinning every dropped record (and whatever they reference) until
     the slots happen to be overwritten by later appends. *)
  let live = t.durable + 1 - t.base in
  if live <= 0 then begin
    t.records <- [||];
    t.size <- 0
  end
  else begin
    let filler = t.records.(live - 1) in
    for i = live to Array.length t.records - 1 do
      t.records.(i) <- filler
    done;
    t.size <- live
  end;
  t.writing <- false;
  (* daemon state: parked waiters died with their fibers; volatile
     serialization work is gone *)
  Heap.clear t.waiters;
  Mailbox.clear t.kick;
  Mailbox.clear t.wkick;
  t.serialized <- t.durable;
  t.write_hi <- t.durable;
  t.force_hi <- t.durable;
  t.last_force_at <- -1.0;
  t.ewma_gap_ms <- -1.0;
  (* the last-writer table lived in the site's memory; recovery rebuilds
     it from the newest checkpoint's [ck_chains] plus the scanned tail *)
  match t.dep_last with Some tbl -> Hashtbl.reset tbl | None -> ()

(* --- accessors ---------------------------------------------------- *)

let forces t = t.forces
let disk_writes t = t.disk_writes
let truncations t = t.truncations
let group_commit t = t.group_commit
let set_group_commit t flag = t.group_commit <- flag

let batch_stats t =
  let buckets = [| 1; 2; 4; 8; 16; 32; 64; max_int |] in
  {
    bs_writes = t.batch_writes;
    bs_records = t.batch_records;
    bs_hist =
      List.filter
        (fun (_, n) -> n > 0)
        (Array.to_list (Array.mapi (fun i n -> (buckets.(i), n)) t.batch_hist));
    bs_force_lat_n = t.force_lat_n;
    bs_force_lat_mean_ms =
      (if t.force_lat_n = 0 then 0.0
       else t.force_lat_sum /. float_of_int t.force_lat_n);
    bs_force_lat_max_ms = t.force_lat_max;
    bs_lag_mean =
      (if t.lag_n = 0 then 0.0 else float_of_int t.lag_sum /. float_of_int t.lag_n);
    bs_lag_max = t.lag_max;
  }

let rec wait_durable t lsn =
  if lsn > t.durable then
    if daemon_mode t then begin
      (* park on the LSN heap without raising [force_hi]: a lazily
         written record rides along with the next write or the periodic
         flush — that is the point of not forcing it *)
      Fiber.suspend (fun r ->
          let seq = t.waiter_seq in
          t.waiter_seq <- seq + 1;
          Heap.push t.waiters ~priority:(float_of_int lsn) ~seq r);
      wait_durable t lsn
    end
    else begin
      Sync.Mutex.lock t.cond_mutex;
      (* same re-check as [force_batched]: a write landing while this
         fiber acquires the mutex must not be waited for again *)
      if lsn > t.durable then Sync.Condition.wait t.cond t.cond_mutex;
      Sync.Mutex.unlock t.cond_mutex;
      wait_durable t lsn
    end

(* --- background daemons ------------------------------------------- *)

(* Every daemon is pinned to the incarnation that spawned it: once the
   site crashes (or restarts into a new incarnation) the daemon exits
   instead of forcing the post-crash log. The guard matters even though
   a crash kills the site's fiber group: a timer that fired in the same
   timestep as the kill escapes cancellation, and its fiber would
   otherwise run one more iteration against the restarted log. *)
let start_flusher t ~every =
  if every <= 0.0 then invalid_arg "Log.start_flusher: period must be positive";
  let inc = Camelot_mach.Site.incarnation t.site in
  Camelot_mach.Site.spawn t.site ~name:"log-flusher" (fun () ->
      let rec loop () =
        Fiber.sleep every;
        if
          Camelot_mach.Site.alive t.site
          && Camelot_mach.Site.incarnation t.site = inc
        then begin
          (* only flush an idle disk: foreground forces have priority *)
          if
            tail_lsn t > t.durable
            && (not t.writing)
            && Sync.Resource.in_use t.disk = 0
            && Sync.Resource.queue_length t.disk = 0
          then begin
            t.writing <- true;
            disk_write t;
            t.writing <- false
          end;
          loop ()
        end
      in
      loop ())

let adaptive_window t (cfg : daemon_config) =
  if not cfg.adaptive then Float.max 0.0 t.batch_window_ms
  else if t.ewma_gap_ms < 0.0 then 0.0
  else begin
    (* wait about one inter-arrival gap for companions to join the
       batch — but only when forces are arriving faster than the cap;
       at low load the window collapses to zero and a force pays only
       its own platter write *)
    let cap =
      if cfg.max_window_ms > 0.0 then cfg.max_window_ms else force_ms t /. 4.0
    in
    if t.ewma_gap_ms <= cap then t.ewma_gap_ms else 0.0
  end

let start_daemon t ~flush_every =
  let cfg =
    match t.daemon with
    | Some cfg -> cfg
    | None -> invalid_arg "Log.start_daemon: log was not created with ~daemon"
  in
  if flush_every <= 0.0 then invalid_arg "Log.start_daemon: period must be positive";
  let inc = Camelot_mach.Site.incarnation t.site in
  let live () =
    Camelot_mach.Site.alive t.site && Camelot_mach.Site.incarnation t.site = inc
  in
  (* Writer: one platter write per handed-off target. While the write's
     I/O is in flight the controller keeps spooling and serializing the
     next batch — the double buffer. *)
  Camelot_mach.Site.spawn t.site ~name:"log-writer" (fun () ->
      let rec loop () =
        if live () then
          if t.write_hi > t.durable then begin
            disk_write_to t ~target:t.write_hi;
            (* the platter is free again: tell the controller so the
               batch that spooled during the write goes out at once *)
            Mailbox.send t.kick ();
            loop ()
          end
          else begin
            (match Mailbox.try_recv t.wkick with
            | Some () -> ()
            | None -> ignore (Mailbox.recv_timeout t.wkick flush_every : unit option));
            loop ()
          end
      in
      loop ());
  (* Controller: drains pending force targets, charges one batched
     serialization pass for the records spooled since the last pass,
     and hands the batch to the writer. *)
  Camelot_mach.Site.spawn t.site ~name:"log-daemon" (fun () ->
      let serialize_and_hand ~target =
        if target > t.serialized then begin
          let n = target - t.serialized in
          t.serialized <- target;
          Camelot_chaos.point ~site:(Camelot_mach.Site.id t.site) p_batch;
          if cfg.batch_spool then begin
            let m = Camelot_mach.Site.model t.site in
            let cpu =
              m.Camelot_mach.Cost_model.log_daemon_pass_cpu_ms
              +. (m.Camelot_mach.Cost_model.log_spool_batch_cpu_ms *. float_of_int n)
            in
            if cpu > 0.0 then Camelot_mach.Site.cpu_use t.site cpu
          end
        end;
        if target > t.write_hi && target > t.durable then begin
          t.write_hi <- target;
          Mailbox.send t.wkick ()
        end
      in
      let rec loop () =
        if live () then begin
          while Mailbox.try_recv t.kick <> None do () done;
          if t.force_hi > t.durable && t.force_hi > t.write_hi then begin
            (* a force is pending and no write covers it yet; if the
               platter is idle, linger briefly so companions arriving at
               the observed rate share the write *)
            if t.write_hi <= t.durable then begin
              let w = adaptive_window t cfg in
              if w > 0.0 then Fiber.sleep w
            end;
            if live () then begin
              serialize_and_hand ~target:(tail_lsn t);
              loop ()
            end
          end
          else
            match Mailbox.recv_timeout t.kick flush_every with
            | Some () -> loop ()
            | None ->
                (* periodic flush of the unforced tail, like the legacy
                   background flusher: only when the platter is idle *)
                if live () then begin
                  if
                    tail_lsn t > t.durable
                    && t.write_hi <= t.durable
                    && Sync.Resource.in_use t.disk = 0
                    && Sync.Resource.queue_length t.disk = 0
                  then serialize_and_hand ~target:(tail_lsn t);
                  loop ()
                end
        end
      in
      loop ())
