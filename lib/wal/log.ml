open Camelot_sim

type lsn = int

type 'a t = {
  site : Camelot_mach.Site.t;
  disk : Sync.Resource.t;
  cond : Sync.Condition.t;
  cond_mutex : Sync.Mutex.t;
  mutable records : 'a array;
  mutable size : int;
  mutable durable : lsn;
  mutable writing : bool;
  mutable group_commit : bool;
  batch_window_ms : float;
  mutable forces : int;
  mutable disk_writes : int;
}

let create ?(group_commit = false) ?(batch_window_ms = 0.0) site =
  let eng = Camelot_mach.Site.engine site in
  {
    site;
    disk =
      Sync.Resource.create eng
        ~name:(Printf.sprintf "site%d.logdisk" (Camelot_mach.Site.id site));
    cond = Sync.Condition.create eng;
    cond_mutex = Sync.Mutex.create ();
    records = [||];
    size = 0;
    durable = -1;
    writing = false;
    group_commit;
    batch_window_ms;
    forces = 0;
    disk_writes = 0;
  }

let append t record =
  let capacity = Array.length t.records in
  if t.size = capacity then begin
    let bigger = Array.make (max 64 (2 * capacity)) record in
    Array.blit t.records 0 bigger 0 t.size;
    t.records <- bigger
  end;
  t.records.(t.size) <- record;
  t.size <- t.size + 1;
  t.size - 1

let tail_lsn t = t.size - 1

let durable_lsn t = t.durable

let force_ms t = (Camelot_mach.Site.model t.site).Camelot_mach.Cost_model.log_force_ms

(* Chaos fault point: a torn force — the site dies mid-write, all but
   the last spooled record land, and the force never returns. *)
let p_torn = Camelot_chaos.register ~kind:Camelot_chaos.Choice "wal.force.torn"

(* One physical write makes everything spooled at write start durable. *)
let disk_write t =
  let target = tail_lsn t in
  ignore (Sync.Resource.use t.disk ~duration:(force_ms t) : float);
  t.disk_writes <- t.disk_writes + 1;
  let site_id = Camelot_mach.Site.id t.site in
  if Camelot_chaos.deny ~site:site_id p_torn then begin
    (* the partial-durability update must precede the crash so
       [crash]'s truncation sees the torn write's true extent *)
    if target - 1 > t.durable then t.durable <- target - 1;
    Camelot_chaos.die ~site:site_id ()
  end;
  if target > t.durable then t.durable <- target;
  Sync.Condition.broadcast t.cond

let rec force_batched t target =
  if target > t.durable then begin
    if t.writing then begin
      (* a leader's write is in flight; wait for it and re-check *)
      Sync.Mutex.lock t.cond_mutex;
      (* re-read [durable] under the mutex before committing to a wait:
         the leader's write may have landed — possibly exactly at
         [target] — while this fiber was acquiring the lock, in which
         case the broadcast it would wait for has already happened *)
      if target > t.durable && t.writing then
        Sync.Condition.wait t.cond t.cond_mutex;
      Sync.Mutex.unlock t.cond_mutex;
      force_batched t target
    end
    else begin
      t.writing <- true;
      (* let forces issued at this same instant spool their records
         into this batch before the I/O is issued *)
      if t.batch_window_ms > 0.0 then Fiber.sleep t.batch_window_ms
      else Fiber.yield ();
      disk_write t;
      t.writing <- false;
      Sync.Condition.broadcast t.cond
    end
  end

let force t =
  let target = tail_lsn t in
  t.forces <- t.forces + 1;
  if target > t.durable then
    if t.group_commit then force_batched t target else disk_write t

let append_force t record =
  let lsn = append t record in
  force t;
  lsn

(* Build the list back-to-front in one pass: no [List.init] closure and
   no intermediate list, half the allocation for long logs. *)
let records_upto t n =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((i, Array.unsafe_get t.records i) :: acc)
  in
  build (n - 1) []

let durable_records t = records_upto t (t.durable + 1)

let all_records t = records_upto t t.size

let iter_durable t f =
  for i = 0 to t.durable do
    f i (Array.unsafe_get t.records i)
  done

let fold_durable t ~init ~f =
  let acc = ref init in
  for i = 0 to t.durable do
    acc := f !acc i (Array.unsafe_get t.records i)
  done;
  !acc

let records_spooled t = t.size

let crash t =
  (* The volatile tail is lost with the site's memory. Clearing the
     dead slots matters: truncating [size] alone would leave the array
     pinning every dropped record (and whatever they reference) until
     the slots happen to be overwritten by later appends. *)
  let live = t.durable + 1 in
  if live <= 0 then begin
    t.records <- [||];
    t.size <- 0
  end
  else begin
    let filler = t.records.(live - 1) in
    for i = live to Array.length t.records - 1 do
      t.records.(i) <- filler
    done;
    t.size <- live
  end;
  t.writing <- false

let forces t = t.forces
let disk_writes t = t.disk_writes
let group_commit t = t.group_commit
let set_group_commit t flag = t.group_commit <- flag

let rec wait_durable t lsn =
  if lsn > t.durable then begin
    Sync.Mutex.lock t.cond_mutex;
    (* same re-check as [force_batched]: a write landing while this
       fiber acquires the mutex must not be waited for again *)
    if lsn > t.durable then Sync.Condition.wait t.cond t.cond_mutex;
    Sync.Mutex.unlock t.cond_mutex;
    wait_durable t lsn
  end

let start_flusher t ~every =
  if every <= 0.0 then invalid_arg "Log.start_flusher: period must be positive";
  Camelot_mach.Site.spawn t.site ~name:"log-flusher" (fun () ->
      let rec loop () =
        Fiber.sleep every;
        (* only flush an idle disk: foreground forces have priority *)
        if
          tail_lsn t > t.durable
          && (not t.writing)
          && Sync.Resource.in_use t.disk = 0
          && Sync.Resource.queue_length t.disk = 0
        then begin
          t.writing <- true;
          disk_write t;
          t.writing <- false
        end;
        loop ()
      in
      loop ())
