(** The common stable-storage write-ahead log of one site.

    In Camelot the disk manager is the single point of access to the
    log and batches log records there (§3.5 "log batching" / group
    commit). This module reproduces that behaviour:

    - [append] spools a record into the volatile tail — free;
    - [force] blocks the calling fiber until every record spooled so
      far is durable. The disk is a serial resource taking
      [log_force_ms] per write, capping an unbatched log at
      ~1000/[log_force_ms] forces per second — the paper's "no more
      than about 30 log writes per second" argument;
    - with {b group commit} enabled, one disk write satisfies every
      force pending at the moment the write starts (plus, optionally, a
      batching window timer as in the IMS/Fast-Path and TMF designs the
      paper cites);
    - with a {b logger daemon} ([~daemon] + {!start_daemon}), forcing
      fibers enqueue their LSN target and park on an LSN-ordered waiter
      heap; the daemon drains all pending targets into one platter
      write, wakes exactly the satisfied waiters (no broadcast), and
      lets the next batch spool and serialize while the write's I/O is
      in flight (double-buffered pipelining);
    - a site {b crash} discards the volatile tail; the durable prefix
      survives and is what recovery reads;
    - {b truncation} drops the durable prefix below a checkpoint so
      recovery scans and memory stay O(window), not O(history).

    The record payload is a type parameter: the transaction manager
    defines its own record type ([camelot_core.Record]). *)

type 'a t

(** Log sequence number: index of a record, starting at 0. LSNs are
    stable across {!truncate}: truncation advances {!base_lsn} without
    renumbering the surviving records. *)
type lsn = int

(** Logger-daemon policy knobs; see {!start_daemon}. *)
type daemon_config = {
  adaptive : bool;
      (** size the collect window from the observed force arrival rate
          (EWMA of inter-arrival gaps) instead of a fixed sleep *)
  max_window_ms : float;
      (** upper bound on the adaptive window; [<= 0] means derive it as
          [log_force_ms / 4] *)
  batch_spool : bool;
      (** defer per-record spool CPU ([log_spool_cpu_ms]) from the
          foreground appender to the daemon's batched serialization
          pass ([log_daemon_pass_cpu_ms] +
          [log_spool_batch_cpu_ms] x records) *)
}

(** [{ adaptive = true; max_window_ms = 0.0; batch_spool = true }]. *)
val daemon_defaults : daemon_config

(** [create site] builds the site's log using its cost model's
    [log_force_ms].
    @param group_commit batch concurrent forces (default false)
    @param batch_window_ms with group commit, how long a leader waits
    before starting the disk write, to accumulate more records
    (default 0)
    @param daemon route forces through the logger daemon instead of the
    leader/follower path; requires a later {!start_daemon} (and again
    after each site restart) for forces to complete.
    @param dep_logging maintain the per-site last-writer table that
    backs dependency logging ({!dep_next} / {!dep_chains}); off by
    default so the paper-reproduction append path is untouched. *)
val create :
  ?group_commit:bool ->
  ?batch_window_ms:float ->
  ?daemon:daemon_config ->
  ?dep_logging:bool ->
  Camelot_mach.Site.t ->
  'a t

(** Spool a record into the volatile tail; returns its LSN. *)
val append : 'a t -> 'a -> lsn

(** Block until all currently-spooled records are durable. Must run in
    a fiber. *)
val force : 'a t -> unit

(** [append] then [force]. Returns the record's LSN. *)
val append_force : 'a t -> 'a -> lsn

(** Highest spooled LSN ([base_lsn - 1] if none). *)
val tail_lsn : 'a t -> lsn

(** Highest durable LSN (-1 if none). *)
val durable_lsn : 'a t -> lsn

(** Lowest LSN still held (0 until the first {!truncate}). *)
val base_lsn : 'a t -> lsn

(** Random access to a held record.
    @raise Invalid_argument if [lsn < base_lsn] or [lsn > tail_lsn]. *)
val get : 'a t -> lsn -> 'a

(** Durable records at or above {!base_lsn}, oldest first, with their
    LSNs: what recovery sees after a crash. *)
val durable_records : 'a t -> (lsn * 'a) list

(** All held records including the volatile tail (for tests). *)
val all_records : 'a t -> (lsn * 'a) list

(** [iter_durable t f] applies [f lsn record] to each durable record
    from {!base_lsn} up, oldest first, without materialising a list —
    the allocation-free way to scan a long log. *)
val iter_durable : 'a t -> (lsn -> 'a -> unit) -> unit

(** [iter_durable_from t ~from f] is {!iter_durable} starting at LSN
    [max from (base_lsn t)] — the index-aware scan recovery uses to
    start at the last checkpoint instead of LSN 0. *)
val iter_durable_from : 'a t -> from:lsn -> (lsn -> 'a -> unit) -> unit

(** [fold_durable t ~init ~f] folds over the held durable prefix,
    oldest first, without materialising a list. *)
val fold_durable : 'a t -> init:'acc -> f:('acc -> lsn -> 'a -> 'acc) -> 'acc

(** Number of held records, including the volatile tail. *)
val records_spooled : 'a t -> int

(** [truncate t ~keep_from] drops (and un-pins) every record below LSN
    [keep_from] — typically the LSN of a just-forced checkpoint record.
    Surviving records keep their LSNs; {!base_lsn} becomes [keep_from].
    No-op if [keep_from <= base_lsn t].
    @raise Invalid_argument if [keep_from > durable_lsn t + 1]: the
    volatile tail cannot be the only copy of history. *)
val truncate : 'a t -> keep_from:lsn -> unit

(** Checkpoint truncations performed. *)
val truncations : 'a t -> int

(** Simulate the crash of the site: the volatile tail is lost, parked
    waiters die with their fibers, daemon hand-off state resets. Called
    by the cluster's crash hook. *)
val crash : 'a t -> unit

(** Completed [force] calls. *)
val forces : 'a t -> int

(** Physical disk writes performed (= [forces] without group commit;
    fewer with). *)
val disk_writes : 'a t -> int

val group_commit : 'a t -> bool

(** Enable/disable batching at runtime (the Figure 4 experiment knob). *)
val set_group_commit : 'a t -> bool -> unit

(** Whether this log runs in daemon mode. *)
val daemon_mode : 'a t -> bool

(** Whether the foreground appender should skip the per-record spool
    CPU charge because this log's daemon serializes in batches. *)
val defers_spool_cpu : 'a t -> bool

(** {2 Dependency logging (Yao et al.)}

    In dependency-log mode the log keeps a per-site {e last-writer
    table}: chain key (caller-chosen, e.g. ["server/key"]) to the LSN
    of the newest record appended under that key. Appenders query it in
    O(1) to stamp each update with a dependency edge; recovery
    partitions the log along those edges and replays the chains on
    parallel fibers. *)

(** Whether this log was created with [~dep_logging:true]. *)
val dep_logging : 'a t -> bool

(** [dep_next t ~key] returns the LSN of the previous record appended
    under [key] ([-1] if none, or if the log is not in dependency
    mode) and records the {e next} append's LSN as [key]'s new last
    writer. The caller must append the record carrying the returned
    edge before any other append — in practice: build the record and
    [append] it immediately, with no suspension point in between. One
    hash probe + one replace; a no-op returning [-1] outside
    dependency mode. *)
val dep_next : 'a t -> key:string -> lsn

(** [dep_seed t ~key lsn] tells the table that [lsn] wrote [key], kept
    only if newer than what the table already holds. Recovery uses this
    to rebuild the table from the newest checkpoint's chain snapshot
    and the scanned tail. No-op outside dependency mode. *)
val dep_seed : 'a t -> key:string -> lsn -> unit

(** Snapshot of the last-writer table as [(chain key, newest LSN)]
    pairs, sorted by key for determinism — the partition metadata a
    checkpoint records so truncation does not sever chain continuity.
    Empty outside dependency mode. *)
val dep_chains : 'a t -> (string * lsn) list

(** Logger batching/latency statistics (daemon and legacy writes). *)
type batch_stats = {
  bs_writes : int;  (** physical writes that carried >= 1 record *)
  bs_records : int;  (** records covered by those writes *)
  bs_hist : (int * int) list;
      (** batch-size histogram: (bucket upper bound, writes); log2
          buckets 1, 2, 4, ... 64, then [max_int] for >= 128 *)
  bs_force_lat_n : int;
  bs_force_lat_mean_ms : float;  (** mean daemon-mode force latency *)
  bs_force_lat_max_ms : float;
  bs_lag_mean : float;
      (** mean records still volatile at the moment a write lands — the
          durable lag the pipelining hides *)
  bs_lag_max : int;
}

val batch_stats : 'a t -> batch_stats

(** Block the calling fiber until the given LSN is durable (via anyone
    else's force or the background flusher). This is how a subordinate
    running the §3.2 optimized protocol learns its lazily-written
    commit record has hit the disk and the commit-ack may go out. In
    daemon mode the fiber parks on the LSN heap without triggering a
    write: a lazy record rides along with the next force or the
    periodic flush. *)
val wait_durable : 'a t -> lsn -> unit

(** Spawn the disk manager's background flusher in the site's fiber
    group: every [every] ms, if the volatile tail is non-empty and the
    disk idle, write it out. Call again after a site restart. The
    flusher is pinned to the incarnation that spawned it and exits once
    the site crashes or restarts. *)
val start_flusher : 'a t -> every:float -> unit

(** Spawn the logger daemon (controller + writer fibers) in the site's
    fiber group. The controller drains pending force targets — lingering
    up to the adaptive window when the platter is idle so companions
    arriving at the observed rate share the write — charges one batched
    serialization pass, and hands the batch to the writer; the writer
    issues one platter write per hand-off while the next batch spools
    (double buffering). Every [flush_every] ms of idleness the unforced
    tail is flushed, like {!start_flusher}. Both fibers are pinned to
    the incarnation that spawned them. Call again after a site restart.
    @raise Invalid_argument if the log was not created with [~daemon]
    or [flush_every <= 0]. *)
val start_daemon : 'a t -> flush_every:float -> unit
