(** The common stable-storage write-ahead log of one site.

    In Camelot the disk manager is the single point of access to the
    log and batches log records there (§3.5 "log batching" / group
    commit). This module reproduces that behaviour:

    - [append] spools a record into the volatile tail — free;
    - [force] blocks the calling fiber until every record spooled so
      far is durable. The disk is a serial resource taking
      [log_force_ms] per write, capping an unbatched log at
      ~1000/[log_force_ms] forces per second — the paper's "no more
      than about 30 log writes per second" argument;
    - with {b group commit} enabled, one disk write satisfies every
      force pending at the moment the write starts (plus, optionally, a
      batching window timer as in the IMS/Fast-Path and TMF designs the
      paper cites);
    - a site {b crash} discards the volatile tail; the durable prefix
      survives and is what recovery reads.

    The record payload is a type parameter: the transaction manager
    defines its own record type ([camelot_core.Record]). *)

type 'a t

(** Log sequence number: index of a record, starting at 0. *)
type lsn = int

(** [create site] builds the site's log using its cost model's
    [log_force_ms].
    @param group_commit batch concurrent forces (default false)
    @param batch_window_ms with group commit, how long a leader waits
    before starting the disk write, to accumulate more records
    (default 0). *)
val create :
  ?group_commit:bool -> ?batch_window_ms:float -> Camelot_mach.Site.t -> 'a t

(** Spool a record into the volatile tail; returns its LSN. *)
val append : 'a t -> 'a -> lsn

(** Block until all currently-spooled records are durable. Must run in
    a fiber. *)
val force : 'a t -> unit

(** [append] then [force]. Returns the record's LSN. *)
val append_force : 'a t -> 'a -> lsn

(** Highest spooled LSN (-1 if none). *)
val tail_lsn : 'a t -> lsn

(** Highest durable LSN (-1 if none). *)
val durable_lsn : 'a t -> lsn

(** Durable records, oldest first, with their LSNs: what recovery sees
    after a crash. *)
val durable_records : 'a t -> (lsn * 'a) list

(** All records including the volatile tail (for tests). *)
val all_records : 'a t -> (lsn * 'a) list

(** [iter_durable t f] applies [f lsn record] to each durable record,
    oldest first, without materialising a list — the allocation-free
    way to scan a long log. *)
val iter_durable : 'a t -> (lsn -> 'a -> unit) -> unit

(** [fold_durable t ~init ~f] folds over the durable prefix, oldest
    first, without materialising a list. *)
val fold_durable : 'a t -> init:'acc -> f:('acc -> lsn -> 'a -> 'acc) -> 'acc

(** Number of spooled records, including the volatile tail
    ([tail_lsn t + 1]). *)
val records_spooled : 'a t -> int

(** Simulate the crash of the site: the volatile tail is lost. Called
    by the cluster's crash hook. *)
val crash : 'a t -> unit

(** Completed [force] calls. *)
val forces : 'a t -> int

(** Physical disk writes performed (= [forces] without group commit;
    fewer with). *)
val disk_writes : 'a t -> int

val group_commit : 'a t -> bool

(** Enable/disable batching at runtime (the Figure 4 experiment knob). *)
val set_group_commit : 'a t -> bool -> unit

(** Block the calling fiber until the given LSN is durable (via anyone
    else's force or the background flusher). This is how a subordinate
    running the §3.2 optimized protocol learns its lazily-written
    commit record has hit the disk and the commit-ack may go out. *)
val wait_durable : 'a t -> lsn -> unit

(** Spawn the disk manager's background flusher in the site's fiber
    group: every [every] ms, if the volatile tail is non-empty and the
    disk idle, write it out. Call again after a site restart. *)
val start_flusher : 'a t -> every:float -> unit
